package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
)

const daxpy = `loop daxpy 1000
node 0 Load x
node 1 Load y
node 2 FPMul ax
node 3 FPAdd sum
node 4 Store out
edge 0 2 2 0 data
edge 2 3 4 0 data
edge 1 3 2 0 data
edge 3 4 3 0 data
`

func TestScheduleFromFile(t *testing.T) {
	dir := t.TempDir()
	loopFile := filepath.Join(dir, "daxpy.ddg")
	if err := os.WriteFile(loopFile, []byte(daxpy), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-clusters", "2", "-regs", "32", loopFile}, nil, &out, &errb); code != 0 {
		t.Fatalf("exited %d: %s", code, errb.String())
	}
	text := out.String()
	if !strings.Contains(text, "machine: 2-cluster/32reg/1bus/lat1") {
		t.Errorf("missing machine banner:\n%s", text)
	}
	if !strings.Contains(text, "daxpy") || !strings.Contains(text, "II=") {
		t.Errorf("missing schedule row:\n%s", text)
	}
}

func TestScheduleFromStdinOnMachineFile(t *testing.T) {
	dir := t.TempDir()
	het := machine.MustHetero("c6x-like", []machine.ClusterSpec{
		{Units: [isa.NumUnitKinds]int{3, 1, 2}, Regs: 24},
		{Units: [isa.NumUnitKinds]int{1, 3, 2}, Regs: 40},
	}, machine.SharedBus, 1, 1, false)
	machFile := filepath.Join(dir, "c6x.machine")
	if err := os.WriteFile(machFile, []byte(machine.Format(het)), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := run([]string{"-machine", machFile, "-alg", "URACAM", "-v"},
		strings.NewReader(daxpy), &out, &errb)
	if code != 0 {
		t.Fatalf("exited %d: %s", code, errb.String())
	}
	text := out.String()
	if !strings.Contains(text, "machine: c6x-like") {
		t.Errorf("-machine file not honored:\n%s", text)
	}
	if !strings.Contains(text, "cluster") {
		t.Errorf("-v placement listing missing:\n%s", text)
	}
}

func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	badMachine := filepath.Join(dir, "bad.machine")
	if err := os.WriteFile(badMachine, []byte("machine broken\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		args  []string
		stdin string
		code  int
	}{
		{"bad-alg", []string{"-alg", "bogus"}, "", 2},
		{"bad-flag", []string{"-frobnicate"}, "", 2},
		{"missing-loop-file", []string{"/does/not/exist.ddg"}, "", 1},
		{"bad-machine-file", []string{"-machine", badMachine}, daxpy, 1},
		{"missing-machine-file", []string{"-machine", "/does/not/exist"}, daxpy, 1},
		{"bad-loop-input", nil, "loop broken\n", 1},
	}
	for _, tc := range cases {
		var out, errb bytes.Buffer
		if code := run(tc.args, strings.NewReader(tc.stdin), &out, &errb); code != tc.code {
			t.Errorf("%s: run(%v) = %d, want %d (stderr: %s)", tc.name, tc.args, code, tc.code, errb.String())
		}
	}
}
