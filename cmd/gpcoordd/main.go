// Command gpcoordd is the cluster coordinator: it fronts a fleet of
// gpserved workers, tracking their health through registrations and
// heartbeats (ready / suspect / dead), routing /v1/schedule by rendezvous
// hashing on the request's content-address key (identical requests land on
// the same worker, whose LRU becomes one shard of a distributed cache),
// failing requests over to surviving nodes, and running async sweep jobs
// (POST /v1/jobs) whose cells are sharded across the fleet and re-placed
// by the reconciliation loop when a worker dies. SIGINT/SIGTERM drain
// in-flight work before exit.
//
// With -journal the coordinator is durable: every registration, job and
// completed cell is appended to a CRC-framed journal in that directory,
// and a restarted gpcoordd pointed at the same directory replays it,
// re-adopts the fleet (suspect until the next heartbeat) and resumes
// unfinished jobs where they left off. An unwritable or version-mismatched
// journal directory fails startup rather than running silently
// non-durable.
//
// Usage:
//
//	gpcoordd [-addr :8038] [-heartbeat 2s] [-suspect-after 6s] [-dead-after 12s] [-job-workers N] [-journal DIR] [-load-bound 1.25]
//	gpcoordd -bench-json BENCH_cluster.json [-bench-requests N] [-bench-concurrency N] [-bench-workers N]
//
// Placement is bounded-load rendezvous hashing: -load-bound sets the
// factor c past which a key's HRW owner (at more than c×mean in-flight
// requests) spills work to the next-ranked ready node. <=0 disables
// spilling (pure HRW).
//
// The -bench-json mode does not serve: it boots an in-process coordinator
// plus worker fleet, drives it with a sustained request mix over loopback
// HTTP, writes the throughput snapshot — including the Zipf hot-key
// phases proving bounded-load spilling restores skewed-traffic throughput
// — and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/store"
)

// pprofMux serves the net/http/pprof handlers on an explicit mux, so the
// profiling surface exists only on -debug-addr and never rides on the
// service listener (http.DefaultServeMux is deliberately unused).
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gpcoordd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8038", "listen address")
	hb := fs.Duration("heartbeat", 2*time.Second, "heartbeat cadence told to registering workers")
	suspectAfter := fs.Duration("suspect-after", 0, "heartbeat age that marks a node suspect (0 = 3× -heartbeat)")
	deadAfter := fs.Duration("dead-after", 0, "heartbeat age that marks a node dead and re-places its work (0 = 6× -heartbeat)")
	jobWorkers := fs.Int("job-workers", 4, "concurrently dispatched cells per sweep job")
	cellAttempts := fs.Int("cell-attempts", 8, "workers one job cell is tried on before the job fails")
	journalDir := fs.String("journal", "", "journal directory for durable coordinator state (empty = in-memory, nothing survives a restart)")
	shadowRate := fs.Float64("shadow-rate", 0, "fraction of proxied schedule hits replayed against a second worker and byte-compared (0 = off, 1 = all)")
	shadowCanary := fs.String("shadow-canary", "", "node ID every shadow replay targets (empty = the next HRW-ranked worker)")
	loadBound := fs.Float64("load-bound", 1.25, "bounded-load factor c: a key spills past its HRW owner once the owner exceeds c×mean in-flight (<=0 disables spilling)")
	logFormat := fs.String("log-format", "text", "structured log encoding: text or json")
	debugAddr := fs.String("debug-addr", "", "listen address for the pprof debug server (empty = off)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight requests")
	benchJSON := fs.String("bench-json", "", "measure cluster throughput and write the snapshot to this JSON file, then exit")
	benchReqs := fs.Int("bench-requests", 400, "total requests of the -bench-json measurement")
	benchConc := fs.Int("bench-concurrency", 8, "client goroutines of the -bench-json measurement")
	benchWorkers := fs.Int("bench-workers", 2, "fleet size of the -bench-json measurement")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := cluster.Config{
		HeartbeatInterval: *hb,
		SuspectAfter:      *suspectAfter,
		DeadAfter:         *deadAfter,
		JobWorkers:        *jobWorkers,
		MaxCellAttempts:   *cellAttempts,
		ShadowRate:        *shadowRate,
		ShadowCanary:      *shadowCanary,
	}
	if *loadBound <= 0 {
		cfg.LoadBound = -1
	} else {
		cfg.LoadBound = *loadBound
	}

	if *benchJSON != "" {
		snap, err := cluster.MeasureThroughput(cfg, cluster.PerfOptions{
			Requests:    *benchReqs,
			Concurrency: *benchConc,
			Workers:     *benchWorkers,
		})
		if err != nil {
			fmt.Fprintf(stderr, "gpcoordd: bench: %v\n", err)
			return 1
		}
		hot, err := cluster.MeasureHotKey(cfg, cluster.HotKeyOptions{
			Workers: *benchWorkers,
		})
		if err != nil {
			fmt.Fprintf(stderr, "gpcoordd: bench: hot-key: %v\n", err)
			return 1
		}
		snap.HotKey = hot
		f, err := os.Create(*benchJSON)
		if err != nil {
			fmt.Fprintf(stderr, "gpcoordd: %v\n", err)
			return 1
		}
		if err := bench.WriteServerPerfJSON(f, snap); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "gpcoordd: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "gpcoordd: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "cluster perf snapshot written to %s (%.0f req/s, %.0f%% fleet cache hits, p99 %.0fµs)\n",
			*benchJSON, snap.RequestsPerSec, snap.CacheHitRate*100, snap.P99Micros)
		fmt.Fprintf(stdout, "hot-key: uniform %.0f/s, hot no-spill %.0f/s, hot spill %.0f/s (%.2fx vs no-spill, uniform/spill %.2f, %d spills)\n",
			hot.UniformPerSec, hot.HotNoSpillPerSec, hot.HotSpillPerSec, hot.SpeedupVsNoSpill, hot.UniformOverSpill, hot.Spills)
		return 0
	}

	if *journalDir != "" {
		j, err := store.OpenJournal(*journalDir, store.JournalOptions{})
		if err != nil {
			fmt.Fprintf(stderr, "gpcoordd: %v\n", err)
			return 1
		}
		cfg.Store = j
	}
	logger, err := obs.NewLogger(*logFormat, stdout)
	if err != nil {
		fmt.Fprintf(stderr, "gpcoordd: %v\n", err)
		return 2
	}
	cfg.Logger = logger

	coord, err := cluster.New(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "gpcoordd: %v\n", err)
		return 1
	}
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(stderr, "gpcoordd: debug listener: %v\n", err)
			coord.Close()
			return 1
		}
		defer dln.Close()
		go func() { _ = http.Serve(dln, pprofMux()) }()
		fmt.Fprintf(stdout, "gpcoordd debug (pprof) on %s\n", dln.Addr())
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "gpcoordd: %v\n", err)
		coord.Close()
		return 1
	}
	hs := &http.Server{Handler: coord.Handler()}
	fmt.Fprintf(stdout, "gpcoordd listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintf(stderr, "gpcoordd: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, wait out in-flight proxied requests,
	// then stop the reconciler and abort still-running jobs — all within
	// the -drain budget so a supervisor's grace period is respected.
	fmt.Fprintln(stdout, "gpcoordd: draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(stderr, "gpcoordd: shutdown: %v (abandoning in-flight work)\n", err)
		return 1
	}
	closed := make(chan struct{})
	go func() { coord.Close(); close(closed) }()
	select {
	case <-closed:
		fmt.Fprintln(stdout, "gpcoordd: drained, bye")
		return 0
	case <-shutCtx.Done():
		fmt.Fprintln(stderr, "gpcoordd: drain budget exceeded, abandoning running jobs")
		return 1
	}
}
