package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/machine"
	"repro/internal/server"
)

// lockedBuffer is a goroutine-safe bytes.Buffer (run() writes, test reads).
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startCoordd boots run() on a loopback port and returns the base URL and
// a shutdown function that triggers the graceful drain and waits for exit.
func startCoordd(t *testing.T, extraArgs ...string) (string, func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var stdout, stderr lockedBuffer
	args := append([]string{"-addr", "127.0.0.1:0", "-heartbeat", "50ms"}, extraArgs...)
	exit := make(chan int, 1)
	go func() { exit <- run(ctx, args, &stdout, &stderr) }()

	deadline := time.Now().Add(10 * time.Second)
	var base string
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never announced its address; stderr: %s", stderr.String())
		}
		for _, line := range strings.Split(stdout.String(), "\n") {
			if addr, ok := strings.CutPrefix(line, "gpcoordd listening on "); ok {
				base = "http://" + strings.TrimSpace(addr)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return base, func() int {
		cancel()
		select {
		case code := <-exit:
			return code
		case <-time.After(30 * time.Second):
			t.Fatal("coordinator did not drain in time")
			return -1
		}
	}
}

// startFleetWorker boots a real gpserved serving stack (server.Server over
// HTTP plus the registration agent) and joins it to the coordinator.
func startFleetWorker(t *testing.T, coordBase, id string) {
	t.Helper()
	srv := server.New(server.Config{NodeID: id})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	agent := server.StartAgent(server.AgentConfig{
		Coordinator: coordBase,
		NodeID:      id,
		Endpoint:    "http://" + ln.Addr().String(),
		Capacity:    runtime.GOMAXPROCS(0),
	})
	t.Cleanup(func() {
		agent.Close()
		_ = hs.Close()
		srv.Close()
	})
}

func waitForReadyNodes(t *testing.T, base string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/nodes")
		if err != nil {
			t.Fatal(err)
		}
		var nodes []struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&nodes)
		resp.Body.Close()
		if err == nil {
			ready := 0
			for _, n := range nodes {
				if n.State == "ready" {
					ready++
				}
			}
			if ready == want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached %d ready nodes", want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

const smokeLoop = `loop smoke 100
node 0 Load a[i]
node 1 FPMul *c
node 2 FPAdd +s
node 3 Store s=
edge 0 1 2 0 data
edge 1 2 4 0 data
edge 2 3 4 0 data
edge 2 2 4 1 data
`

// TestCoorddSmoke is the CI cluster gate: boot the coordinator daemon,
// join two workers, prove cache-affine routing with an observable cache
// hit through the coordinator, run a sharded sweep job end-to-end whose
// CSV is byte-identical to the in-process single-node sweep, and drain
// gracefully.
func TestCoorddSmoke(t *testing.T) {
	base, shutdown := startCoordd(t)
	startFleetWorker(t, base, "smoke-a")
	startFleetWorker(t, base, "smoke-b")
	waitForReadyNodes(t, base, 2)

	// Liveness: healthz is a JSON fleet summary now.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	healthBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var health struct {
		Status  string `json:"status"`
		Journal bool   `json:"journal"`
		Nodes   struct {
			Ready int `json:"ready"`
		} `json:"nodes"`
		Advice string `json:"advice"`
	}
	if resp.StatusCode != http.StatusOK || json.Unmarshal(healthBody, &health) != nil {
		t.Fatalf("healthz: %d %q", resp.StatusCode, healthBody)
	}
	if health.Status != "ok" || health.Journal || health.Nodes.Ready != 2 || health.Advice == "" {
		t.Fatalf("healthz summary off: %s", healthBody)
	}

	// Proxied scheduling: identical requests route to one worker and the
	// second is a cache hit, observable through the coordinator.
	body, err := json.Marshal(map[string]any{
		"loop_text": smokeLoop,
		"clusters":  2, "regs": 32, "nbus": 1, "latbus": 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	post := func() (*http.Response, []byte) {
		resp, err := http.Post(base+"/v1/schedule", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		return resp, out
	}
	respCold, outCold := post()
	if respCold.StatusCode != http.StatusOK {
		t.Fatalf("cold: %d %s", respCold.StatusCode, outCold)
	}
	node := respCold.Header.Get("X-Node")
	if node == "" {
		t.Fatal("no X-Node header on proxied response")
	}
	respHot, outHot := post()
	if respHot.StatusCode != http.StatusOK || respHot.Header.Get("X-Node") != node {
		t.Fatalf("hot request routed to %q, want %q", respHot.Header.Get("X-Node"), node)
	}
	if respHot.Header.Get("X-Cache") != "hit" {
		t.Fatalf("identical request not a cache hit through the coordinator (X-Cache=%q)", respHot.Header.Get("X-Cache"))
	}
	if !bytes.Equal(outCold, outHot) {
		t.Fatal("cache hit bytes differ from cold response")
	}

	if testing.Short() {
		if code := shutdown(); code != 0 {
			t.Fatalf("daemon exited %d", code)
		}
		return
	}

	// Async sweep job across the fleet, byte-identical to the single-node
	// sweep.
	jobReq := server.SweepRequest{
		Machines: []machine.Config{
			*machine.MustClustered(2, 64, 1, 1),
			*machine.MustClustered(4, 64, 1, 1),
		},
		Corpora:  []string{"SPECfp95", "DSP"},
		MaxLoops: 1,
	}
	jb, err := json.Marshal(&jobReq)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(jb))
	if err != nil {
		t.Fatal(err)
	}
	ackBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create job: %d %s", resp.StatusCode, ackBody)
	}
	var ack struct {
		ID    string `json:"id"`
		Cells int    `json:"cells"`
	}
	if err := json.Unmarshal(ackBody, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Cells != 4 {
		t.Fatalf("job has %d cells, want 4", ack.Cells)
	}

	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + ack.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State  string `json:"state"`
			Done   int    `json:"done"`
			Failed int    `json:"failed"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			break
		}
		if st.State == "failed" || time.Now().After(deadline) {
			t.Fatalf("job state %q (done %d, failed %d)", st.State, st.Done, st.Failed)
		}
		time.Sleep(50 * time.Millisecond)
	}

	resp, err = http.Get(base + "/v1/jobs/" + ack.ID + "/csv")
	if err != nil {
		t.Fatal(err)
	}
	gotCSV, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("csv: %d %s", resp.StatusCode, gotCSV)
	}

	machines, corpora, err := server.ResolveSweep(&jobReq)
	if err != nil {
		t.Fatal(err)
	}
	points, err := bench.Sweep(context.Background(), machines, corpora, bench.Config{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := bench.WriteSweepCSV(&want, points); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCSV, want.Bytes()) {
		t.Fatalf("distributed job CSV differs from single-node sweep:\ngot:\n%s\nwant:\n%s", gotCSV, want.Bytes())
	}

	// Coordinator metrics carry the cluster counters.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, wantLine := range []string{"gpcoordd_placements_total", "gpcoordd_jobs_done_total 1", "gpcoordd_node_health"} {
		if !strings.Contains(string(metrics), wantLine) {
			t.Errorf("metrics missing %q", wantLine)
		}
	}

	if code := shutdown(); code != 0 {
		t.Fatalf("daemon exited %d", code)
	}
}

func TestBenchJSONMode(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement; skipped with -short")
	}
	path := filepath.Join(t.TempDir(), "BENCH_cluster.json")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-bench-json", path,
		"-bench-requests", "120",
		"-bench-concurrency", "4",
		"-bench-workers", "2",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap bench.ServerPerfSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v\n%s", err, data)
	}
	if snap.Requests != 120 || snap.RequestsPerSec <= 0 || snap.Errors != 0 {
		t.Fatalf("implausible snapshot: %+v", snap)
	}
	if snap.CacheHitRate <= 0 {
		// 120 requests cycle an 81-loop working set: the second lap must
		// hit the fleet's sharded caches.
		t.Fatalf("no cache hits cycling the working set twice: %+v", snap)
	}
}

func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestCoorddJournalRoundTrip proves the daemon wiring of the durable
// store: a journaled run registers a worker and a restarted daemon on the
// same journal still knows it (as a suspect node) before any re-register.
func TestCoorddJournalRoundTrip(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "journal")
	base, shutdown := startCoordd(t, "-journal", journal)
	startFleetWorker(t, base, "jw-a")
	waitForReadyNodes(t, base, 1)
	if code := shutdown(); code != 0 {
		t.Fatalf("daemon exited %d", code)
	}

	// A long heartbeat keeps the adopted node in suspect (not swept to
	// dead) for the whole assertion window.
	base2, shutdown2 := startCoordd(t, "-journal", journal, "-heartbeat", "30s")
	defer shutdown2()
	resp, err := http.Get(base2 + "/v1/nodes")
	if err != nil {
		t.Fatal(err)
	}
	var nodes []struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&nodes)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	// The worker from the first run may already have re-registered (its
	// agent heartbeats the fixed coordinator URL only in-process, so here
	// it cannot) — the restarted daemon must know it purely from the
	// journal, in the adopted-suspect state.
	if len(nodes) != 1 || nodes[0].ID != "jw-a" || nodes[0].State != "suspect" {
		t.Fatalf("journaled node not adopted: %+v", nodes)
	}
}

// TestCoorddJournalFailFast covers the small-fix satellite: an unwritable
// or version-mismatched journal directory must fail startup with a clear
// error, never run silently non-durable.
func TestCoorddJournalFailFast(t *testing.T) {
	mismatch := t.TempDir()
	if err := os.WriteFile(filepath.Join(mismatch, "VERSION"), []byte("gpcoordd-journal-v999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-journal", mismatch}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d with version-mismatched journal, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "version") {
		t.Fatalf("no version-mismatch explanation on stderr: %s", stderr.String())
	}

	if os.Geteuid() != 0 { // root ignores file modes
		unwritable := t.TempDir()
		if err := os.Chmod(unwritable, 0o555); err != nil {
			t.Fatal(err)
		}
		defer os.Chmod(unwritable, 0o755)
		stdout.Reset()
		stderr.Reset()
		if code := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-journal", unwritable}, &stdout, &stderr); code != 1 {
			t.Fatalf("exit %d with unwritable journal dir, want 1; stderr: %s", code, stderr.String())
		}
		if !strings.Contains(stderr.String(), "journal") {
			t.Fatalf("no journal explanation on stderr: %s", stderr.String())
		}
	}
}
