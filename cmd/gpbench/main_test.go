package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/isa"
	"repro/internal/machine"
)

func TestTable1Output(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-table1"}, &out, &errb); code != 0 {
		t.Fatalf("exited %d: %s", code, errb.String())
	}
	text := out.String()
	for _, want := range []string{"Table 1", "unified/64reg", "2-cluster/64reg/1bus/lat1", "4-cluster/64reg/1bus/lat1"} {
		if !strings.Contains(text, want) {
			t.Errorf("-table1 output missing %q:\n%s", want, text)
		}
	}
}

// TestSweepCSVDeterministicAcrossWorkers is the harness's headline
// contract: the -sweep CSV over the default machine set (paper Table-1
// configuration, heterogeneous mix, pipelined-bus and point-to-point
// variants) × both corpora is byte-identical for sequential and parallel
// runs, with every schedule passing the Verify oracle.
func TestSweepCSVDeterministicAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	csv1 := filepath.Join(dir, "p1.csv")
	csvN := filepath.Join(dir, "pN.csv")
	for par, path := range map[string]string{"1": csv1, "4": csvN} {
		var out, errb bytes.Buffer
		code := run([]string{"-sweep", "-short", "-parallel", par, "-csv", path}, &out, &errb)
		if code != 0 {
			t.Fatalf("-sweep -parallel %s exited %d: %s", par, code, errb.String())
		}
	}
	b1, err := os.ReadFile(csv1)
	if err != nil {
		t.Fatal(err)
	}
	bN, err := os.ReadFile(csvN)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, bN) {
		t.Fatalf("sweep CSV differs between -parallel=1 and -parallel=4:\n%s\nvs\n%s", b1, bN)
	}
	text := string(b1)
	if !strings.HasPrefix(text, "corpus,config,program,unified,URACAM,Fixed,GP\n") {
		t.Errorf("sweep CSV header wrong:\n%s", text[:80])
	}
	for _, m := range machine.SweepSet() {
		for _, corpus := range []string{"SPECfp95", "DSP"} {
			if !strings.Contains(text, corpus+","+m.Name+",") {
				t.Errorf("sweep CSV missing cell %s × %s", m.Name, corpus)
			}
		}
	}
	if strings.Contains(text, "SKIPPED") {
		t.Errorf("default sweep set must be feasible for both corpora:\n%s", text)
	}
}

func TestMachineFlagRunsCustomPanel(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus panel on a custom machine")
	}
	dir := t.TempDir()
	het := machine.MustHetero("hetpanel", []machine.ClusterSpec{
		{Units: [isa.NumUnitKinds]int{3, 1, 2}, Regs: 24},
		{Units: [isa.NumUnitKinds]int{1, 3, 2}, Regs: 40},
	}, machine.SharedBus, 1, 1, false)
	path := filepath.Join(dir, "het.machine")
	if err := os.WriteFile(path, []byte(machine.Format(het)), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-machine", path}, &out, &errb); code != 0 {
		t.Fatalf("exited %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Machine hetpanel") {
		t.Errorf("custom machine panel missing:\n%s", out.String())
	}
}

// TestBenchJSONSnapshot exercises the -bench-json perf-snapshot mode end to
// end: the file must parse, carry the three partitioner micro-benchmarks,
// and report zero steady-state allocations for the evaluator (the
// allocation-free contract of the incremental refactor).
func TestBenchJSONSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("runs testing.Benchmark measurements (several seconds)")
	}
	path := filepath.Join(t.TempDir(), "BENCH_partition.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-bench-json", path}, &out, &errb); code != 0 {
		t.Fatalf("exited %d: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap bench.PerfSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot does not parse: %v\n%s", err, data)
	}
	want := map[string]bool{
		"partition_medium_2cluster": false,
		"partition_large_4cluster":  false,
		"evaluate_steady_state":     false,
	}
	for _, b := range snap.Benchmarks {
		if _, ok := want[b.Name]; ok {
			want[b.Name] = true
		}
		if b.NsPerOp <= 0 {
			t.Errorf("%s: ns_per_op %d not positive", b.Name, b.NsPerOp)
		}
		if b.Name == "evaluate_steady_state" && b.AllocsPerOp != 0 {
			t.Errorf("evaluate_steady_state allocates %d/op, want 0", b.AllocsPerOp)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("snapshot missing benchmark %q", name)
		}
	}
	if snap.SchedulesPerSec <= 0 || snap.LoopsScheduled <= 0 {
		t.Errorf("throughput not measured: %+v", snap)
	}
}

func TestExitCodes(t *testing.T) {
	cases := []struct {
		args []string
		code int
	}{
		{[]string{"-nosuchflag"}, 2},
		{[]string{"-machine", "/does/not/exist"}, 1},
		{[]string{"-machine", " , "}, 1},
		{[]string{"-bench-json", "/does/not/exist/bench.json"}, 1},
	}
	for _, tc := range cases {
		var out, errb bytes.Buffer
		if code := run(tc.args, &out, &errb); code != tc.code {
			t.Errorf("run(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.code, errb.String())
		}
	}
}
