// Command gpbench regenerates the paper's evaluation: Table 1 (machine
// configurations), Figure 2 (IPC on 2- and 4-cluster machines, 1-cycle
// bus), Figure 3 (4-cluster, 2-cycle bus), Table 2 (scheduling time) and
// the headline summary (GP speedup over URACAM and Fixed Partition).
//
// Beyond the paper grid, -sweep fans a cross-product of machine
// descriptions (built-in set or -machine files) × both corpora (SPECfp95 +
// DSP) × all four schemes across the parallel runner, verifies every
// schedule with the schedule.Verify oracle, and emits one deterministic
// CSV.
//
// Usage:
//
//	gpbench [-table1] [-figure2] [-figure3] [-table2] [-summary] [-ablations] [-all]
//	        [-machine m1.txt,m2.txt] [-sweep] [-short] [-noverify]
//	        [-parallel N] [-csv out.csv]
//	        [-bench-json BENCH_partition.json] [-cpuprofile cpu.out] [-memprofile mem.out]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro"
	"repro/internal/bench"
	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gpbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	t1 := fs.Bool("table1", false, "print Table 1 (configurations)")
	f2 := fs.Bool("figure2", false, "run Figure 2 (1-cycle bus, 2 and 4 clusters)")
	f3 := fs.Bool("figure3", false, "run Figure 3 (2-cycle bus, 4 clusters)")
	t2 := fs.Bool("table2", false, "run Table 2 (scheduling time)")
	sum := fs.Bool("summary", false, "print the headline speedups")
	abl := fs.Bool("ablations", false, "run the DESIGN.md ablations")
	sweep := fs.Bool("sweep", false, "run the machine × corpus sweep and emit one deterministic CSV")
	machines := fs.String("machine", "", "comma-separated machine-description files (default: the built-in sweep set)")
	short := fs.Bool("short", false, "trim every corpus to its first two loops per benchmark (fast CI sweep)")
	noVerify := fs.Bool("noverify", false, "skip the schedule.Verify oracle during -sweep")
	csvPath := fs.String("csv", "", "also write every panel (or the sweep) as CSV to this file")
	all := fs.Bool("all", false, "everything")
	par := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"worker goroutines scheduling loops (1 = sequential; IPC results are identical for every value)")
	benchJSON := fs.String("bench-json", "", "run the partitioner micro-benchmarks and write a perf snapshot (ns/op, allocs/op, schedules/sec) to this JSON file")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile at exit to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if !*sweep && (*short || *noVerify) {
		fmt.Fprintln(stderr, "gpbench: -short and -noverify only apply to -sweep runs")
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "gpbench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "gpbench: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(stderr, "gpbench: %v\n", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "gpbench: %v\n", err)
			}
			f.Close()
		}()
	}

	if *benchJSON != "" {
		f, err := os.Create(*benchJSON)
		if err != nil {
			fmt.Fprintf(stderr, "gpbench: %v\n", err)
			return 1
		}
		snap, err := bench.MeasurePerf()
		if err != nil {
			f.Close()
			fmt.Fprintf(stderr, "gpbench: bench-json: %v\n", err)
			return 1
		}
		if err := bench.WritePerfJSON(f, snap); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "gpbench: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "gpbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "perf snapshot written to %s (%.0f schedules/sec)\n", *benchJSON, snap.SchedulesPerSec)
	}
	machineSet, err := loadMachines(*machines)
	if err != nil {
		fmt.Fprintf(stderr, "gpbench: %v\n", err)
		return 1
	}

	if *sweep {
		return runSweep(machineSet, *par, *short, !*noVerify, *csvPath, stdout, stderr)
	}
	if *benchJSON != "" && !(*t1 || *f2 || *f3 || *t2 || *sum || *abl || *all || *machines != "") {
		return 0 // bench-json alone: no paper panels
	}
	if !(*t1 || *f2 || *f3 || *t2 || *sum || *abl || *all || *machines != "") {
		*all = true
	}

	corpus := gpsched.SPECfp95Corpus()
	names := make([]string, 0, len(corpus))
	for _, b := range corpus {
		names = append(names, b.Name)
	}

	var reports []*bench.Report
	runPanel := func(cfg bench.Config) (*bench.Report, bool) {
		cfg.Parallel = *par
		rep, err := bench.Run(corpus, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "gpbench: %v\n", err)
			return nil, false
		}
		bench.SortRowsLike(rep, names)
		reports = append(reports, rep)
		return rep, true
	}

	if *t1 || *all {
		fmt.Fprintln(stdout, "=== Table 1: clustered VLIW configurations ===")
		fmt.Fprintln(stdout, bench.RenderTable1(64, 1, 1))
	}
	if *machines != "" {
		// Custom machines: one four-scheme panel each over the SPECfp95
		// corpus.
		for _, m := range machineSet {
			fmt.Fprintf(stdout, "=== Machine %s ===\n", m.Name)
			rep, ok := runPanel(bench.Config{Machine: m})
			if !ok {
				return 1
			}
			fmt.Fprintln(stdout, rep.Render())
		}
	}
	if *f2 || *all {
		fmt.Fprintln(stdout, "=== Figure 2: IPC, 1 bus, latency 1 ===")
		for _, cfg := range bench.Figure2Configs() {
			rep, ok := runPanel(cfg)
			if !ok {
				return 1
			}
			fmt.Fprintln(stdout, rep.Render())
		}
	}
	if *f3 || *all {
		fmt.Fprintln(stdout, "=== Figure 3: IPC, 1 bus, latency 2 ===")
		for _, cfg := range bench.Figure3Configs() {
			rep, ok := runPanel(cfg)
			if !ok {
				return 1
			}
			fmt.Fprintln(stdout, rep.Render())
		}
	}
	if (*t2 || *sum || *all) && len(reports) == 0 {
		// Need at least the headline configuration.
		for _, cfg := range []bench.Config{
			{Clusters: 2, TotalRegs: 32, NBus: 1, LatBus: 1},
			{Clusters: 4, TotalRegs: 32, NBus: 1, LatBus: 1},
		} {
			if _, ok := runPanel(cfg); !ok {
				return 1
			}
		}
	}
	if *t2 || *all {
		fmt.Fprintln(stdout, "=== Table 2: scheduling time per scheme ===")
		fmt.Fprintln(stdout, bench.RenderTable2(reports))
	}
	if *sum || *all {
		fmt.Fprintln(stdout, "=== Headline summary ===")
		for _, rep := range reports {
			fmt.Fprintf(stdout, "%-28s GP vs URACAM %+6.1f%%   GP vs Fixed %+6.1f%%   URACAM/GP time %.1fx\n",
				rep.Machine.Name, rep.Speedup(bench.SchemeURACAM), rep.Speedup(bench.SchemeFixed), rep.TimeRatio())
		}
		fmt.Fprintln(stdout)
	}
	if *abl || *all {
		fmt.Fprintln(stdout, "=== Ablations (2-cluster, 32 regs, 1 bus, latency 1; GP mean IPC) ===")
		base := bench.Config{Clusters: 2, TotalRegs: 32, NBus: 1, LatBus: 1}
		ablations := []struct {
			name string
			opts *partition.Options
		}{
			{"paper (delay/slack weights, refined, exact matching)", nil},
			{"A1 uniform edge weights", &partition.Options{Weights: partition.UniformWeights}},
			{"A2 refinement off", &partition.Options{SkipRefinement: true}},
			{"A4 greedy-only matching", &partition.Options{GreedyMatchingOnly: true}},
			{"A6 register-aware partitioning (paper future work)", &partition.Options{RegisterAware: true}},
		}
		for _, a := range ablations {
			cfg := base
			cfg.Parallel = *par
			if a.opts != nil {
				cfg.PartitionOpts = &gpsched.Options{Partition: a.opts}
			}
			rep, err := bench.Run(corpus, cfg)
			if err != nil {
				fmt.Fprintf(stderr, "gpbench: ablation %s: %v\n", a.name, err)
				return 1
			}
			fmt.Fprintf(stdout, "%-55s GP IPC %.3f (vs URACAM %+5.1f%%)\n",
				a.name, rep.MeanIPC[bench.SchemeGP], rep.Speedup(bench.SchemeURACAM))
		}
		fmt.Fprintln(stdout)
	}

	if *csvPath != "" && len(reports) > 0 {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(stderr, "gpbench: %v\n", err)
			return 1
		}
		for _, rep := range reports {
			if err := rep.WriteCSV(f); err != nil {
				fmt.Fprintf(stderr, "gpbench: %v\n", err)
				return 1
			}
		}
		if err := bench.WriteTimesCSV(f, reports); err != nil {
			fmt.Fprintf(stderr, "gpbench: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "gpbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "CSV series written to %s\n", *csvPath)
	}

	if err := workloadSanity(corpus); err != nil {
		fmt.Fprintf(stderr, "gpbench: corpus sanity: %v\n", err)
		return 1
	}
	return 0
}

// loadMachines parses the comma-separated -machine file list, or returns
// the built-in sweep set when the flag is empty.
func loadMachines(flagVal string) ([]*machine.Config, error) {
	if flagVal == "" {
		return machine.SweepSet(), nil
	}
	var ms []*machine.Config
	for _, path := range strings.Split(flagVal, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		m, err := machine.Parse(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		ms = append(ms, m)
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("-machine %q names no files", flagVal)
	}
	return ms, nil
}

// runSweep executes the machine × corpus cross-product and writes the
// deterministic sweep CSV to csvPath (or stdout when empty).
func runSweep(machines []*machine.Config, parallel int, short, verify bool, csvPath string, stdout, stderr io.Writer) int {
	maxLoops := 0
	if short {
		maxLoops = 2
	}
	corpora := bench.SweepCorpora(maxLoops)
	cfg := bench.Config{Parallel: parallel, Verify: verify}
	points, err := bench.Sweep(context.Background(), machines, corpora, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "gpbench: sweep: %v\n", err)
		return 1
	}
	for _, pt := range points {
		if pt.Report == nil {
			fmt.Fprintf(stderr, "gpbench: sweep: skipped %s × %s: %s\n", pt.Machine.Name, pt.Corpus, pt.SkipReason)
		}
	}
	if csvPath == "" {
		if err := bench.WriteSweepCSV(stdout, points); err != nil {
			fmt.Fprintf(stderr, "gpbench: sweep csv: %v\n", err)
			return 1
		}
		return 0
	}
	f, err := os.Create(csvPath)
	if err != nil {
		fmt.Fprintf(stderr, "gpbench: %v\n", err)
		return 1
	}
	if err := bench.WriteSweepCSV(f, points); err != nil {
		f.Close()
		fmt.Fprintf(stderr, "gpbench: sweep csv: %v\n", err)
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(stderr, "gpbench: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "sweep CSV written to %s (%d cells)\n", csvPath, len(points))
	return 0
}

// workloadSanity re-validates the corpus after the run (paranoia: the
// schedulers must never mutate the input graphs).
func workloadSanity(corpus []*workload.Benchmark) error {
	for _, b := range corpus {
		for _, l := range b.Loops {
			if err := l.G.Validate(); err != nil {
				return err
			}
		}
	}
	return nil
}
