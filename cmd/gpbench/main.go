// Command gpbench regenerates the paper's evaluation: Table 1 (machine
// configurations), Figure 2 (IPC on 2- and 4-cluster machines, 1-cycle
// bus), Figure 3 (4-cluster, 2-cycle bus), Table 2 (scheduling time) and
// the headline summary (GP speedup over URACAM and Fixed Partition).
//
// Usage:
//
//	gpbench [-table1] [-figure2] [-figure3] [-table2] [-summary] [-ablations] [-all]
//	        [-parallel N] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro"
	"repro/internal/bench"
	"repro/internal/partition"
	"repro/internal/workload"
)

func main() {
	t1 := flag.Bool("table1", false, "print Table 1 (configurations)")
	f2 := flag.Bool("figure2", false, "run Figure 2 (1-cycle bus, 2 and 4 clusters)")
	f3 := flag.Bool("figure3", false, "run Figure 3 (2-cycle bus, 4 clusters)")
	t2 := flag.Bool("table2", false, "run Table 2 (scheduling time)")
	sum := flag.Bool("summary", false, "print the headline speedups")
	abl := flag.Bool("ablations", false, "run the DESIGN.md ablations")
	csvPath := flag.String("csv", "", "also write every panel as CSV to this file")
	all := flag.Bool("all", false, "everything")
	par := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker goroutines scheduling loops (1 = sequential; IPC results are identical for every value)")
	flag.Parse()
	if !(*t1 || *f2 || *f3 || *t2 || *sum || *abl || *all) {
		*all = true
	}

	corpus := gpsched.SPECfp95Corpus()
	names := make([]string, 0, len(corpus))
	for _, b := range corpus {
		names = append(names, b.Name)
	}

	var reports []*bench.Report
	run := func(cfg bench.Config) *bench.Report {
		cfg.Parallel = *par
		rep, err := bench.Run(corpus, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpbench: %v\n", err)
			os.Exit(1)
		}
		bench.SortRowsLike(rep, names)
		reports = append(reports, rep)
		return rep
	}

	if *t1 || *all {
		fmt.Println("=== Table 1: clustered VLIW configurations ===")
		fmt.Println(bench.RenderTable1(64, 1, 1))
	}
	if *f2 || *all {
		fmt.Println("=== Figure 2: IPC, 1 bus, latency 1 ===")
		for _, cfg := range bench.Figure2Configs() {
			fmt.Println(run(cfg).Render())
		}
	}
	if *f3 || *all {
		fmt.Println("=== Figure 3: IPC, 1 bus, latency 2 ===")
		for _, cfg := range bench.Figure3Configs() {
			fmt.Println(run(cfg).Render())
		}
	}
	if (*t2 || *sum || *all) && len(reports) == 0 {
		// Need at least the headline configuration.
		run(bench.Config{Clusters: 2, TotalRegs: 32, NBus: 1, LatBus: 1})
		run(bench.Config{Clusters: 4, TotalRegs: 32, NBus: 1, LatBus: 1})
	}
	if *t2 || *all {
		fmt.Println("=== Table 2: scheduling time per scheme ===")
		fmt.Println(bench.RenderTable2(reports))
	}
	if *sum || *all {
		fmt.Println("=== Headline summary ===")
		for _, rep := range reports {
			fmt.Printf("%-28s GP vs URACAM %+6.1f%%   GP vs Fixed %+6.1f%%   URACAM/GP time %.1fx\n",
				rep.Machine.Name, rep.Speedup(bench.SchemeURACAM), rep.Speedup(bench.SchemeFixed), rep.TimeRatio())
		}
		fmt.Println()
	}
	if *abl || *all {
		fmt.Println("=== Ablations (2-cluster, 32 regs, 1 bus, latency 1; GP mean IPC) ===")
		base := bench.Config{Clusters: 2, TotalRegs: 32, NBus: 1, LatBus: 1}
		ablations := []struct {
			name string
			opts *partition.Options
		}{
			{"paper (delay/slack weights, refined, exact matching)", nil},
			{"A1 uniform edge weights", &partition.Options{Weights: partition.UniformWeights}},
			{"A2 refinement off", &partition.Options{SkipRefinement: true}},
			{"A4 greedy-only matching", &partition.Options{GreedyMatchingOnly: true}},
			{"A6 register-aware partitioning (paper future work)", &partition.Options{RegisterAware: true}},
		}
		for _, a := range ablations {
			cfg := base
			cfg.Parallel = *par
			if a.opts != nil {
				cfg.PartitionOpts = &gpsched.Options{Partition: a.opts}
			}
			rep, err := bench.Run(corpus, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gpbench: ablation %s: %v\n", a.name, err)
				os.Exit(1)
			}
			fmt.Printf("%-55s GP IPC %.3f (vs URACAM %+5.1f%%)\n",
				a.name, rep.MeanIPC[bench.SchemeGP], rep.Speedup(bench.SchemeURACAM))
		}
		fmt.Println()
	}

	if *csvPath != "" && len(reports) > 0 {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpbench: %v\n", err)
			os.Exit(1)
		}
		for _, rep := range reports {
			if err := rep.WriteCSV(f); err != nil {
				fmt.Fprintf(os.Stderr, "gpbench: %v\n", err)
				os.Exit(1)
			}
		}
		if err := bench.WriteTimesCSV(f, reports); err != nil {
			fmt.Fprintf(os.Stderr, "gpbench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "gpbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("CSV series written to %s\n", *csvPath)
	}

	if err := workloadSanity(corpus); err != nil {
		fmt.Fprintf(os.Stderr, "gpbench: corpus sanity: %v\n", err)
		os.Exit(1)
	}
}

// workloadSanity re-validates the corpus after the run (paranoia: the
// schedulers must never mutate the input graphs).
func workloadSanity(corpus []*workload.Benchmark) error {
	for _, b := range corpus {
		for _, l := range b.Loops {
			if err := l.G.Validate(); err != nil {
				return err
			}
		}
	}
	return nil
}
