package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
)

// startDaemon boots run() on a loopback port and returns the base URL and a
// shutdown function that triggers the graceful drain and waits for exit.
func startDaemon(t *testing.T, extraArgs ...string) (string, func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var stdout lockedBuffer
	var stderr lockedBuffer
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	exit := make(chan int, 1)
	go func() { exit <- run(ctx, args, &stdout, &stderr) }()

	deadline := time.Now().Add(10 * time.Second)
	var base string
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stderr: %s", stderr.String())
		}
		for _, line := range strings.Split(stdout.String(), "\n") {
			if addr, ok := strings.CutPrefix(line, "gpserved listening on "); ok {
				base = "http://" + strings.TrimSpace(addr)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return base, func() int {
		cancel()
		select {
		case code := <-exit:
			return code
		case <-time.After(30 * time.Second):
			t.Fatal("daemon did not drain in time")
			return -1
		}
	}
}

// lockedBuffer is a goroutine-safe bytes.Buffer (run() writes, test reads).
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

const smokeLoop = `loop smoke 100
node 0 Load a[i]
node 1 FPMul *c
node 2 FPAdd +s
node 3 Store s=
edge 0 1 2 0 data
edge 1 2 4 0 data
edge 2 3 4 0 data
edge 2 2 4 1 data
`

func smokeBody(t *testing.T, name string) []byte {
	t.Helper()
	text := strings.Replace(smokeLoop, "loop smoke 100", "loop "+name+" 100", 1)
	body, err := json.Marshal(map[string]any{
		"loop_text": text,
		"clusters":  2, "regs": 32, "nbus": 1, "latbus": 1,
		"scheme": "GP",
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestServedSmoke is the CI smoke gate: boot the daemon, hit /healthz, fire
// concurrent identical and distinct schedule requests, require cache hits
// byte-identical to cold responses, drive the pool into saturation until a
// 429 with Retry-After appears, and drain gracefully.
func TestServedSmoke(t *testing.T) {
	base, shutdown := startDaemon(t, "-workers", "1", "-queue", "2")

	// Liveness.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(ok)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, ok)
	}

	post := func(body []byte) (*http.Response, []byte, error) {
		resp, err := http.Post(base+"/v1/schedule", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		return resp, out, err
	}

	// Cold request, then a cache hit that must be byte-identical.
	cold := smokeBody(t, "cold")
	respCold, bodyCold, err := post(cold)
	if err != nil || respCold.StatusCode != http.StatusOK {
		t.Fatalf("cold request: %v %d %s", err, respCold.StatusCode, bodyCold)
	}
	respHot, bodyHot, err := post(cold)
	if err != nil || respHot.StatusCode != http.StatusOK {
		t.Fatalf("hot request: %v %d %s", err, respHot.StatusCode, bodyHot)
	}
	if respHot.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second identical request not served from cache (X-Cache=%q)", respHot.Header.Get("X-Cache"))
	}
	if !bytes.Equal(bodyCold, bodyHot) {
		t.Fatal("cache hit differs from cold response")
	}

	// Concurrent identical + distinct traffic: all 200, identical bodies
	// agree with the cold bytes.
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := cold
			if i%2 == 1 {
				body = smokeBody(t, fmt.Sprintf("distinct%d", i))
			}
			resp, out, err := post(body)
			if err != nil {
				errs <- err
				return
			}
			// Saturation of the deliberately tiny pool is allowed here; the
			// dedicated push below asserts it actually happens.
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
				errs <- fmt.Errorf("request %d: status %d body %s", i, resp.StatusCode, out)
				return
			}
			if resp.StatusCode == http.StatusOK && i%2 == 0 && !bytes.Equal(out, bodyCold) {
				errs <- fmt.Errorf("identical request %d returned different bytes", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Saturation: keep firing distinct (uncacheable, uncoalescible) loops
	// until the bounded queue sheds one with 429 + Retry-After.
	saw429 := false
	deadline := time.Now().Add(60 * time.Second)
	for round := 0; !saw429 && time.Now().Before(deadline); round++ {
		var mu sync.Mutex
		var burst sync.WaitGroup
		for i := 0; i < 12; i++ {
			burst.Add(1)
			go func(i int) {
				defer burst.Done()
				resp, _, err := post(smokeBody(t, fmt.Sprintf("sat%d_%d", round, i)))
				if err != nil {
					return
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					if resp.Header.Get("Retry-After") == "" {
						t.Error("429 without Retry-After")
					}
					mu.Lock()
					saw429 = true
					mu.Unlock()
				}
			}(i)
		}
		burst.Wait()
	}
	if !saw429 {
		t.Fatal("never saw 429 backpressure under sustained distinct load")
	}

	// Metrics reflect the traffic.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"gpserved_cache_hits_total", "gpserved_rejected_total"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	if code := shutdown(); code != 0 {
		t.Fatalf("daemon exited %d", code)
	}
}

// TestWorkerModeJoinsAndLeavesFleet boots the daemon in -coordinator mode
// against a real cluster coordinator: it must register, serve proxied
// requests tagged with its node identity, and deregister before draining
// so the coordinator stops routing to it immediately.
func TestWorkerModeJoinsAndLeavesFleet(t *testing.T) {
	coord, err := cluster.New(cluster.Config{HeartbeatInterval: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	chs := &http.Server{Handler: coord.Handler()}
	go func() { _ = chs.Serve(ln) }()
	defer func() {
		_ = chs.Close()
		coord.Close()
	}()
	coordBase := "http://" + ln.Addr().String()

	base, shutdown := startDaemon(t, "-coordinator", coordBase, "-node-id", "joiner")
	_ = base

	deadline := time.Now().Add(10 * time.Second)
	for {
		nodes := coord.Nodes()
		if len(nodes) == 1 && nodes[0].ID == "joiner" && nodes[0].State == "ready" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never registered: %+v", nodes)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A request proxied through the coordinator reaches this worker and
	// carries its identity.
	resp, err := http.Post(coordBase+"/v1/schedule", "application/json", bytes.NewReader(smokeBody(t, "viacoord")))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied request: %d %s", resp.StatusCode, out)
	}
	if got := resp.Header.Get("X-Node"); got != "joiner" {
		t.Fatalf("X-Node = %q, want joiner", got)
	}

	// Graceful shutdown deregisters: the node table empties rather than
	// waiting out the dead-node detector.
	if code := shutdown(); code != 0 {
		t.Fatalf("daemon exited %d", code)
	}
	if nodes := coord.Nodes(); len(nodes) != 0 {
		t.Fatalf("worker still registered after graceful exit: %+v", nodes)
	}
}

func TestBenchJSONMode(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement; skipped with -short")
	}
	path := filepath.Join(t.TempDir(), "BENCH_server.json")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-bench-json", path,
		"-bench-requests", "120",
		"-bench-concurrency", "4",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap bench.ServerPerfSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v\n%s", err, data)
	}
	if snap.Requests != 120 || snap.RequestsPerSec <= 0 || snap.Errors != 0 {
		t.Fatalf("implausible snapshot: %+v", snap)
	}
	if snap.CacheHitRate <= 0 {
		// 120 requests cycle an 81-loop working set: the second lap must hit.
		t.Fatalf("no cache hits cycling the working set twice: %+v", snap)
	}
}

func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
