// Command gpserved is the scheduling-as-a-service daemon: it serves the
// paper's GP/Fixed/URACAM schedulers over HTTP with a content-addressed
// result cache, singleflight coalescing of identical in-flight requests,
// and a bounded worker pool that sheds load with 429 + Retry-After when
// saturated. SIGINT/SIGTERM drain in-flight work before exit.
//
// Usage:
//
//	gpserved [-addr :8037] [-workers N] [-queue N] [-cache N]
//	gpserved -coordinator http://host:8038 [-advertise URL] [-node-id ID]
//	gpserved -bench-json BENCH_server.json [-bench-requests N] [-bench-concurrency N]
//
// With -coordinator the daemon joins a gpcoordd fleet: it registers with
// its capacity and advertised endpoint, heartbeats on the coordinator's
// cadence, re-registers if the coordinator restarts, and deregisters
// before draining on SIGTERM so the coordinator stops routing to it
// immediately instead of waiting out the dead-node detector.
//
// The -bench-json mode does not serve: it boots an in-process daemon,
// drives it with a sustained request mix over loopback HTTP, writes the
// throughput snapshot and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/server"
)

// pprofMux serves the net/http/pprof handlers on an explicit mux, so the
// profiling surface exists only on -debug-addr and never rides on the
// service listener (http.DefaultServeMux is deliberately unused).
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// capacity resolves the advertised worker-goroutine count the same way the
// server's pool does.
func capacity(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.GOMAXPROCS(0)
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gpserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8037", "listen address")
	workers := fs.Int("workers", 0, "scheduling worker goroutines (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "bounded queue depth before 429 backpressure")
	cacheN := fs.Int("cache", 1024, "LRU result-cache entries")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight requests")
	coordinator := fs.String("coordinator", "", "gpcoordd base URL; register this worker and keep it heartbeating")
	advertise := fs.String("advertise", "", "base URL the coordinator should route to (default http://<listen addr>)")
	nodeID := fs.String("node-id", "", "stable worker identity (default the advertised host:port)")
	heartbeat := fs.Duration("heartbeat-interval", 0, "heartbeat cadence override (0 = the coordinator's suggestion)")
	algoVersion := fs.String("algo-version", "", "advertised algorithm version override (default the compiled-in schedule.AlgoVersion; canary deploys set this)")
	bestFit := fs.Bool("balance-best-fit", false, "use the best-fit partition balancing variant (folded into the advertised algorithm version and every cache key)")
	portfolio := fs.Int("portfolio", 0, "default portfolio width: race K seeded partition starts per request and keep the best (0 or 1 = sequential; K>1 is folded into the advertised algorithm version)")
	logFormat := fs.String("log-format", "text", "structured log encoding: text or json")
	debugAddr := fs.String("debug-addr", "", "listen address for the pprof debug server (empty = off)")
	benchJSON := fs.String("bench-json", "", "measure sustained throughput and write the snapshot to this JSON file, then exit")
	benchReqs := fs.Int("bench-requests", 400, "total requests of the -bench-json measurement")
	benchConc := fs.Int("bench-concurrency", 8, "client goroutines of the -bench-json measurement")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := server.Config{Workers: *workers, QueueDepth: *queue, CacheEntries: *cacheN,
		AlgoVersion: *algoVersion, BalanceBestFit: *bestFit, Portfolio: *portfolio}

	if *benchJSON != "" {
		snap, err := server.MeasureThroughput(cfg, server.PerfOptions{
			Requests:    *benchReqs,
			Concurrency: *benchConc,
		})
		if err != nil {
			fmt.Fprintf(stderr, "gpserved: bench: %v\n", err)
			return 1
		}
		f, err := os.Create(*benchJSON)
		if err != nil {
			fmt.Fprintf(stderr, "gpserved: %v\n", err)
			return 1
		}
		if err := bench.WriteServerPerfJSON(f, snap); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "gpserved: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "gpserved: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "server perf snapshot written to %s (%.0f req/s, %.0f%% cache hits, p99 %.0fµs)\n",
			*benchJSON, snap.RequestsPerSec, snap.CacheHitRate*100, snap.P99Micros)
		return 0
	}

	logger, err := obs.NewLogger(*logFormat, stdout)
	if err != nil {
		fmt.Fprintf(stderr, "gpserved: %v\n", err)
		return 2
	}
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(stderr, "gpserved: debug listener: %v\n", err)
			return 1
		}
		defer dln.Close()
		go func() { _ = http.Serve(dln, pprofMux()) }()
		fmt.Fprintf(stdout, "gpserved debug (pprof) on %s\n", dln.Addr())
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "gpserved: %v\n", err)
		return 1
	}
	endpoint := *advertise
	if endpoint == "" {
		endpoint = "http://" + ln.Addr().String()
	}
	id := *nodeID
	if id == "" {
		id = strings.TrimPrefix(strings.TrimPrefix(endpoint, "https://"), "http://")
	}
	if *coordinator != "" {
		// The node identity rides on every response so the coordinator's
		// routing is observable end-to-end.
		cfg.NodeID = id
	}
	srv := server.New(cfg)
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stdout, "gpserved listening on %s\n", ln.Addr())

	var agent *server.Agent
	if *coordinator != "" {
		agent = server.StartAgent(server.AgentConfig{
			Coordinator: *coordinator,
			NodeID:      id,
			Endpoint:    endpoint,
			Capacity:    capacity(cfg.Workers),
			Interval:    *heartbeat,
			AlgoVersion: srv.AlgoVersion(),
			Load:        srv.Load,
			Epoch:       srv.Epoch,
			ApplyEpoch:  func(e uint64) { srv.FlushTo(e) },
			Logger:      logger,
		})
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		if agent != nil {
			agent.Close()
		}
		fmt.Fprintf(stderr, "gpserved: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	// Leave the fleet before draining: a deregistered worker stops
	// receiving placements at once, so the drain below only has to finish
	// work already in flight.
	if agent != nil {
		agent.Close()
		fmt.Fprintln(stdout, "gpserved: deregistered from coordinator")
	}

	// Graceful drain: stop accepting, wait out in-flight handlers, then
	// drain the worker pool's queue — all within the -drain budget, so a
	// supervisor's termination grace period is respected even when a long
	// sweep is mid-flight (the process exits and abandons it rather than
	// earn a SIGKILL).
	fmt.Fprintln(stdout, "gpserved: draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(stderr, "gpserved: shutdown: %v (abandoning in-flight work)\n", err)
		return 1
	}
	poolDone := make(chan struct{})
	go func() { srv.Close(); close(poolDone) }()
	select {
	case <-poolDone:
		fmt.Fprintln(stdout, "gpserved: drained, bye")
		return 0
	case <-shutCtx.Done():
		fmt.Fprintln(stderr, "gpserved: drain budget exceeded, abandoning queued work")
		return 1
	}
}
