#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end cluster gate over the real binaries.
#
# Builds race-instrumented gpcoordd + gpserved, boots one coordinator and
# two workers, runs the `-sweep -short` equivalent as a distributed job
# ({"max_loops": 2, "verify": true} over the default machine set × both
# corpora), and requires the assembled CSV to be byte-identical to the
# committed single-node golden (internal/bench/testdata/
# sweep_short_golden.csv). Also checks cache-affine routing: the second of
# two identical /v1/schedule requests must be an X-Cache hit served by the
# same X-Node.
#
# Then the durability gate: a second job is submitted, the coordinator is
# kill -9'd mid-job, and a fresh gpcoordd on the same -journal directory
# and port must list the job as resumed, still serve the first job's CSV,
# and finish the second with CSV byte-identical to the same golden.
#
# Then the rolling-upgrade gate: one worker is restarted with a bumped
# -algo-version, the operator-style POST /v1/cache/flush must converge
# every worker on the new epoch, the same request must recompute (X-Cache
# miss, byte-identical to the pre-upgrade answer) instead of serving a
# stale pre-flush entry, and the always-on shadow verifier (-shadow-rate 1)
# must have sampled replays with zero mismatches.
#
# Then the hot-key gate: a third worker joins, a burst of identical
# requests for one fresh key hammers the fleet, and bounded-load placement
# (-load-bound 1.25) must spill the hot key past its overloaded HRW owner
# (gpcoordd_spills_total advances) while every response stays 200 (no
# shedding) and byte-identical. Finally all workers and the coordinator
# must drain gracefully (exit 0) on SIGTERM.
set -euo pipefail
cd "$(dirname "$0")/.."

work="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$work"
}
trap cleanup EXIT

echo "== building race-instrumented binaries"
go build -race -o "$work" ./cmd/gpcoordd ./cmd/gpserved

wait_listen() { # logfile prefix -> base URL
    local log="$1" prefix="$2" addr="" tries=0
    while [ -z "$addr" ]; do
        addr="$(sed -n "s/^$prefix listening on //p" "$log" | head -1)"
        tries=$((tries + 1))
        if [ "$tries" -gt 200 ]; then
            echo "$prefix never started:" >&2
            cat "$log" >&2
            exit 1
        fi
        [ -n "$addr" ] || sleep 0.05
    done
    echo "http://$addr"
}

echo "== booting gpcoordd (journaled) + 2 gpserved workers"
journal="$work/smoke-journal"
"$work/gpcoordd" -addr 127.0.0.1:0 -heartbeat 500ms -journal "$journal" -shadow-rate 1 -load-bound 1.25 >"$work/coordd.log" 2>&1 &
pids+=($!)
coord_pid=$!
coord="$(wait_listen "$work/coordd.log" gpcoordd)"

"$work/gpserved" -addr 127.0.0.1:0 -coordinator "$coord" -node-id smoke-a >"$work/worker-a.log" 2>&1 &
pids+=($!)
wa_pid=$!
"$work/gpserved" -addr 127.0.0.1:0 -coordinator "$coord" -node-id smoke-b >"$work/worker-b.log" 2>&1 &
pids+=($!)
wb_pid=$!

for i in $(seq 1 200); do
    ready="$(curl -sf "$coord/v1/nodes" | grep -c '"state": "ready"' || true)"
    [ "$ready" = 2 ] && break
    if [ "$i" = 200 ]; then
        echo "fleet never became ready:" >&2
        curl -s "$coord/v1/nodes" >&2 || true
        exit 1
    fi
    sleep 0.05
done
echo "== fleet ready"

echo "== cache-affine routing through the coordinator"
req='{"loop_text": "loop smoke 100\nnode 0 Load a[i]\nnode 1 FPMul *c\nnode 2 FPAdd +s\nedge 0 1 2 0 data\nedge 1 2 4 0 data\nedge 2 2 4 1 data\n", "clusters": 2, "regs": 32, "nbus": 1, "latbus": 1}'
curl -sf -D "$work/h1" -o "$work/b1" "$coord/v1/schedule" -d "$req"
curl -sf -D "$work/h2" -o "$work/b2" "$coord/v1/schedule" -d "$req"
node1="$(tr -d '\r' <"$work/h1" | sed -n 's/^X-Node: //p')"
node2="$(tr -d '\r' <"$work/h2" | sed -n 's/^X-Node: //p')"
hit="$(tr -d '\r' <"$work/h2" | sed -n 's/^X-Cache: //p')"
[ -n "$node1" ] && [ "$node1" = "$node2" ] || { echo "routing not affine: '$node1' vs '$node2'" >&2; exit 1; }
[ "$hit" = hit ] || { echo "second identical request not a cache hit (X-Cache: $hit)" >&2; exit 1; }
cmp "$work/b1" "$work/b2" || { echo "cache hit bytes differ" >&2; exit 1; }

echo "== distributed /v1/schedule/batch matches a standalone single node byte-for-byte"
# The coordinator shards a batch's loops across the fleet per-loop and
# reassembles the streamed array; a standalone gpserved answers the same
# envelope in-process. The two bodies must be byte-identical, including the
# in-place error element for the malformed middle loop (per-loop partial
# failure, not a 400).
"$work/gpserved" -addr 127.0.0.1:0 >"$work/standalone.log" 2>&1 &
pids+=($!)
sa_pid=$!
standalone="$(wait_listen "$work/standalone.log" gpserved)"
batch='{"clusters": 2, "regs": 32, "nbus": 1, "latbus": 1, "loops": [
  {"loop_text": "loop smoke 100\nnode 0 Load a[i]\nnode 1 FPMul *c\nnode 2 FPAdd +s\nedge 0 1 2 0 data\nedge 1 2 4 0 data\nedge 2 2 4 1 data\n"},
  {"loop_text": "loop broken"},
  {"loop_text": "loop smoke2 64\nnode 0 IntALU +a\nnode 1 Store s[i]\nedge 0 1 1 0 data\n"}]}'
curl -sf -o "$work/batch-single" "$standalone/v1/schedule/batch" -d "$batch"
curl -sf -o "$work/batch-cluster" "$coord/v1/schedule/batch" -d "$batch"
cmp "$work/batch-single" "$work/batch-cluster" ||
    { echo "distributed batch differs from single-node batch" >&2; exit 1; }
curl -sf -o "$work/batch-cluster2" "$coord/v1/schedule/batch" -d "$batch"
cmp "$work/batch-cluster" "$work/batch-cluster2" ||
    { echo "distributed batch not byte-stable across repeats" >&2; exit 1; }
loops_counted=0
for _ in 1 2 3; do
    if curl -sf "$coord/metrics" | grep -q '^gpcoordd_batch_loops_total [1-9]'; then
        loops_counted=1; break
    fi
    sleep 1
done
[ "$loops_counted" = 1 ] ||
    { echo "coordinator did not count fanned-out batch loops" >&2; exit 1; }
kill -TERM "$sa_pid"
wait "$sa_pid" || { echo "standalone gpserved failed to drain" >&2; cat "$work/standalone.log" >&2; exit 1; }

echo "== distributed -short sweep job vs committed single-node golden"
job="$(curl -sf "$coord/v1/jobs" -d '{"max_loops": 2, "verify": true}')"
id="$(printf '%s' "$job" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')"
[ -n "$id" ] || { echo "no job id in: $job" >&2; exit 1; }
for i in $(seq 1 1200); do
    if curl -sf -o "$work/cluster.csv" "$coord/v1/jobs/$id/csv" &&
        head -1 "$work/cluster.csv" | grep -q '^corpus,'; then
        break
    fi
    if [ "$i" = 1200 ]; then
        echo "job $id never finished:" >&2
        curl -s "$coord/v1/jobs/$id" >&2 || true
        exit 1
    fi
    sleep 0.5
done
cmp "$work/cluster.csv" internal/bench/testdata/sweep_short_golden.csv ||
    { echo "distributed sweep differs from single-node golden" >&2; exit 1; }
echo "== CSV byte-identical to sweep_short_golden.csv"

echo "== kill -9 the coordinator mid-job, restart on the same journal"
job2="$(curl -sf "$coord/v1/jobs" -d '{"max_loops": 2, "verify": true}')"
id2="$(printf '%s' "$job2" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')"
[ -n "$id2" ] || { echo "no job id in: $job2" >&2; exit 1; }
# Let it get genuinely mid-flight: at least one cell journaled done while
# the job still runs (it may finish first on a fast machine — the restart
# must then serve it straight from the journal, which the cmp below still
# proves).
for i in $(seq 1 600); do
    status="$(curl -s "$coord/v1/jobs/$id2")"
    done_cells="$(printf '%s' "$status" | sed -n 's/.*"done": \([0-9]*\).*/\1/p')"
    [ "${done_cells:-0}" -ge 1 ] && break
    sleep 0.1
done
kill -9 "$coord_pid"
wait "$coord_pid" 2>/dev/null || true

port="${coord##*:}"
"$work/gpcoordd" -addr "127.0.0.1:$port" -heartbeat 500ms -journal "$journal" -shadow-rate 1 -load-bound 1.25 >"$work/coordd2.log" 2>&1 &
pids+=($!)
coord_pid=$!
coord2="$(wait_listen "$work/coordd2.log" gpcoordd)"
[ "$coord2" = "$coord" ] || { echo "restart landed on $coord2, want $coord" >&2; exit 1; }

curl -sf "$coord/v1/jobs" >"$work/jobs.json"
grep -q "\"id\": \"$id2\"" "$work/jobs.json" ||
    { echo "restarted coordinator lost job $id2:" >&2; cat "$work/jobs.json" >&2; exit 1; }
grep -q '"resumed": true' "$work/jobs.json" ||
    { echo "no job marked resumed after restart:" >&2; cat "$work/jobs.json" >&2; exit 1; }

# The pre-crash job survived the crash, CSV intact.
curl -sf -o "$work/job1-after.csv" "$coord/v1/jobs/$id/csv" ||
    { echo "pre-crash job $id unservable after restart" >&2; exit 1; }
cmp "$work/job1-after.csv" internal/bench/testdata/sweep_short_golden.csv ||
    { echo "pre-crash job CSV corrupted by restart" >&2; exit 1; }

# The in-flight job resumes and finishes with zero lost cells.
for i in $(seq 1 1200); do
    if curl -sf -o "$work/resumed.csv" "$coord/v1/jobs/$id2/csv" &&
        head -1 "$work/resumed.csv" | grep -q '^corpus,'; then
        break
    fi
    if [ "$i" = 1200 ]; then
        echo "resumed job $id2 never finished:" >&2
        curl -s "$coord/v1/jobs/$id2" >&2 || true
        exit 1
    fi
    sleep 0.5
done
cmp "$work/resumed.csv" internal/bench/testdata/sweep_short_golden.csv ||
    { echo "resumed sweep differs from single-node golden" >&2; exit 1; }
echo "== resumed job CSV byte-identical to sweep_short_golden.csv"

echo "== rolling upgrade: restart worker b on a bumped algorithm version"
kill -TERM "$wb_pid"
wait "$wb_pid" || { echo "worker b failed to drain for the upgrade" >&2; cat "$work/worker-b.log" >&2; exit 1; }
"$work/gpserved" -addr 127.0.0.1:0 -coordinator "$coord" -node-id smoke-b -algo-version gp/3-smoke >"$work/worker-b2.log" 2>&1 &
pids+=($!)
wb_pid=$!
for i in $(seq 1 200); do
    ready="$(curl -sf "$coord/v1/nodes" | grep -c '"state": "ready"' || true)"
    [ "$ready" = 2 ] && break
    if [ "$i" = 200 ]; then
        echo "fleet never re-readied after the upgrade:" >&2
        curl -s "$coord/v1/nodes" >&2 || true
        exit 1
    fi
    sleep 0.05
done
curl -sf "$coord/v1/nodes" | grep -q '"algo_version": "gp/3-smoke"' ||
    { echo "upgraded worker's version never reached the registry" >&2; curl -s "$coord/v1/nodes" >&2; exit 1; }

echo "== fleet cache flush converges every worker on the new epoch"
flush="$(curl -sf "$coord/v1/cache/flush" -d '{}')"
epoch="$(printf '%s' "$flush" | sed -n 's/.*"epoch": \([0-9]*\).*/\1/p' | head -1)"
[ "${epoch:-0}" -ge 1 ] || { echo "flush did not raise the epoch: $flush" >&2; exit 1; }
for i in $(seq 1 200); do
    conv="$(curl -sf "$coord/v1/nodes" | grep -c "\"epoch\": $epoch" || true)"
    [ "$conv" = 2 ] && break
    if [ "$i" = 200 ]; then
        echo "fleet never converged on epoch $epoch:" >&2
        curl -s "$coord/v1/nodes" >&2 || true
        exit 1
    fi
    sleep 0.05
done

# The flushed fleet must recompute — and land on the same bytes as before
# the upgrade, since both versions are this build. A stale pre-flush cache
# entry would surface here as an X-Cache hit or divergent bytes.
curl -sf -D "$work/h3" -o "$work/b3" "$coord/v1/schedule" -d "$req"
[ "$(tr -d '\r' <"$work/h3" | sed -n 's/^X-Cache: //p')" = miss ] ||
    { echo "post-flush request served a stale cache entry" >&2; cat "$work/h3" >&2; exit 1; }
[ "$(tr -d '\r' <"$work/h3" | sed -n 's/^X-Algo-Epoch: //p' | head -1)" = "$epoch" ] ||
    { echo "post-flush response not stamped with epoch $epoch" >&2; cat "$work/h3" >&2; exit 1; }
cmp "$work/b1" "$work/b3" || { echo "bytes changed across the rolling upgrade" >&2; exit 1; }
curl -sf -D "$work/h4" -o "$work/b4" "$coord/v1/schedule" -d "$req"
[ "$(tr -d '\r' <"$work/h4" | sed -n 's/^X-Cache: //p')" = hit ] ||
    { echo "post-flush cache never repopulated" >&2; cat "$work/h4" >&2; exit 1; }
cmp "$work/b1" "$work/b4" || { echo "repopulated cache bytes differ" >&2; exit 1; }

echo "== shadow verifier sampled replays with zero mismatches"
sleep 2 # let the async replays of the requests above land
metrics="$(curl -sf "$coord/metrics")"
sampled="$(printf '%s\n' "$metrics" | sed -n 's/^gpcoordd_shadow_sampled_total //p')"
[ "${sampled:-0}" -ge 1 ] || { echo "shadow verifier sampled nothing (rate 1)" >&2; exit 1; }
printf '%s\n' "$metrics" | grep -q '^gpcoordd_shadow_mismatch_total 0$' ||
    { echo "shadow mismatches across a same-binary upgrade:" >&2
      printf '%s\n' "$metrics" | grep '^gpcoordd_shadow' >&2; exit 1; }

echo "== fleet API: JSON healthz and scaling advice"
curl -sf "$coord/healthz" | grep -q '"status": "ok"' ||
    { echo "healthz is not the JSON fleet summary" >&2; curl -s "$coord/healthz" >&2; exit 1; }
curl -sf "$coord/v1/fleet/advice" | grep -q '"advice": "' ||
    { echo "/v1/fleet/advice returned no verdict" >&2; curl -s "$coord/v1/fleet/advice" >&2; exit 1; }

echo "== observability: one X-Request-Id stitches coordinator and worker traces"
rid="smoke0000feedbeef"
obsreq='{"loop_text": "loop obskey 100\nnode 0 Load a[i]\nnode 1 FPAdd +s\nnode 2 Store s=\nedge 0 1 2 0 data\nedge 1 2 4 0 data\nedge 1 1 4 1 data\n", "clusters": 2, "regs": 32, "nbus": 1, "latbus": 1}'
curl -sf -D "$work/h5" -o /dev/null -H "X-Request-Id: $rid" "$coord/v1/schedule" -d "$obsreq"
[ "$(tr -d '\r' <"$work/h5" | sed -n 's/^X-Request-Id: //p' | head -1)" = "$rid" ] ||
    { echo "coordinator did not echo the request ID" >&2; cat "$work/h5" >&2; exit 1; }
grep -qi '^X-Phase-Timing: ' "$work/h5" ||
    { echo "response missing X-Phase-Timing" >&2; cat "$work/h5" >&2; exit 1; }
served_by="$(tr -d '\r' <"$work/h5" | sed -n 's/^X-Node: //p' | head -1)"
[ -n "$served_by" ] || { echo "no X-Node on traced response" >&2; exit 1; }

curl -sf -o "$work/ctrace.json" "$coord/v1/debug/traces/$rid" ||
    { echo "coordinator has no trace for $rid" >&2; exit 1; }
grep -q "\"id\": \"$rid\"" "$work/ctrace.json" &&
    grep -q '"op": "proxy-schedule"' "$work/ctrace.json" &&
    grep -q '"name": "place"' "$work/ctrace.json" ||
    { echo "coordinator trace malformed:" >&2; cat "$work/ctrace.json" >&2; exit 1; }

worker_ep="$(curl -sf "$coord/v1/fleet/nodes" |
    tr -d '\n' | sed -n "s/.*\"id\": \"$served_by\",[[:space:]]*\"endpoint\": \"\([^\"]*\)\".*/\1/p")"
[ -n "$worker_ep" ] || { echo "no endpoint for node $served_by" >&2; exit 1; }
curl -sf -o "$work/wtrace.json" "$worker_ep/v1/debug/traces/$rid" ||
    { echo "worker $served_by has no trace for $rid" >&2; exit 1; }
grep -q "\"id\": \"$rid\"" "$work/wtrace.json" &&
    grep -q '"op": "schedule"' "$work/wtrace.json" ||
    { echo "worker trace malformed:" >&2; cat "$work/wtrace.json" >&2; exit 1; }
echo "== trace $rid present on coordinator (proxy-schedule) and worker $served_by (schedule)"

echo "== observability: metric families complete on both /metrics pages"
curl -sf "$coord/metrics" >"$work/coord-metrics"
curl -sf "$worker_ep/metrics" >"$work/worker-metrics"
for fam in gpcoordd_request_duration_seconds_bucket gpcoordd_request_duration_seconds_sum gpcoordd_request_duration_seconds_count; do
    grep -q "^$fam" "$work/coord-metrics" ||
        { echo "coordinator /metrics missing $fam" >&2; exit 1; }
done
for fam in gpserved_request_duration_seconds_bucket gpserved_request_duration_seconds_sum gpserved_request_duration_seconds_count; do
    grep -q "^$fam" "$work/worker-metrics" ||
        { echo "worker /metrics missing $fam" >&2; exit 1; }
done
# Metric-name lint: every family must be a *_total counter, a histogram
# series, a known gauge, or carry a label block (per-node gauges). A typoed
# family name fails here the way the Go-side obs.CheckMetrics test does.
bad_names="$(grep -vE '^#|^$' "$work/coord-metrics" "$work/worker-metrics" | sed 's/^[^:]*://' |
    awk '{print $1}' | grep -v '{' |
    grep -vE '_(total|bucket|sum|count)$' |
    grep -vE '^(gpcoordd_fleet_advice|gpcoordd_jobs_running|gpcoordd_fleet_epoch|gpcoordd_recovery_(nodes_adopted|jobs_resumed|cells_restored)|gpcoordd_nodes|gpcoordd_latency_p(50|99)_seconds|gpserved_cache_entries|gpserved_algo_epoch|gpserved_queue_depth|gpserved_inflight|gpserved_latency_p(50|99)_seconds)$' || true)"
[ -z "$bad_names" ] || { echo "unrecognized metric families:" >&2; printf '%s\n' "$bad_names" >&2; exit 1; }

echo "== hot-key phase: single-key burst against 3 workers spills without shedding"
"$work/gpserved" -addr 127.0.0.1:0 -coordinator "$coord" -node-id smoke-c >"$work/worker-c.log" 2>&1 &
pids+=($!)
wc_pid=$!
for i in $(seq 1 200); do
    ready="$(curl -sf "$coord/v1/fleet/nodes" | grep -c '"state": "ready"' || true)"
    [ "$ready" = 3 ] && break
    if [ "$i" = 200 ]; then
        echo "third worker never became ready:" >&2
        curl -s "$coord/v1/fleet/nodes" >&2 || true
        exit 1
    fi
    sleep 0.05
done

# A fresh (uncached) key, hit by 40 concurrent clients: the HRW owner blows
# past the 1.25×mean in-flight bound and the key must fan down the ranking.
hotreq='{"loop_text": "loop hotkey 100\nnode 0 Load a[i]\nnode 1 Load b[i]\nnode 2 FPMul *c\nnode 3 FPMul *d\nnode 4 FPAdd +s\nnode 5 FPAdd +t\nnode 6 Store s=\nnode 7 Store t=\nedge 0 2 2 0 data\nedge 1 3 2 0 data\nedge 2 4 4 0 data\nedge 3 5 4 0 data\nedge 4 6 4 0 data\nedge 5 7 4 0 data\nedge 4 4 4 1 data\nedge 5 5 4 1 data\n", "clusters": 4, "regs": 64, "nbus": 2, "latbus": 1}'
spills_before="$(curl -sf "$coord/metrics" | sed -n 's/^gpcoordd_spills_total //p')"
: >"$work/hot-codes"
curl_pids=()
for i in $(seq 1 40); do
    curl -s -o "$work/hot-$i" -w '%{http_code}\n' "$coord/v1/schedule" -d "$hotreq" >>"$work/hot-codes" &
    curl_pids+=($!)
done
wait "${curl_pids[@]}"
bad="$(grep -cv '^200$' "$work/hot-codes" || true)"
[ "$bad" = 0 ] || { echo "$bad/40 hot-key requests shed or failed:" >&2; sort "$work/hot-codes" | uniq -c >&2; exit 1; }
for i in $(seq 2 40); do
    cmp -s "$work/hot-1" "$work/hot-$i" ||
        { echo "hot-key response $i differs from response 1" >&2; exit 1; }
done
spills_after="$(curl -sf "$coord/metrics" | sed -n 's/^gpcoordd_spills_total //p')"
[ "${spills_after:-0}" -gt "${spills_before:-0}" ] ||
    { echo "bounded-load never spilled (spills $spills_before -> $spills_after)" >&2
      curl -s "$coord/metrics" | grep '^gpcoordd_node_inflight' >&2 || true; exit 1; }
echo "== hot key spilled $((spills_after - spills_before)) time(s), 0 shed, 40/40 byte-identical"

echo "== graceful drain"
kill -TERM "$wa_pid" "$wb_pid" "$wc_pid"
wait "$wa_pid" || { echo "worker a exited non-zero" >&2; cat "$work/worker-a.log" >&2; exit 1; }
wait "$wb_pid" || { echo "worker b exited non-zero" >&2; cat "$work/worker-b.log" >&2; exit 1; }
wait "$wc_pid" || { echo "worker c exited non-zero" >&2; cat "$work/worker-c.log" >&2; exit 1; }
kill -TERM "$coord_pid"
wait "$coord_pid" || { echo "coordinator exited non-zero" >&2; cat "$work/coordd2.log" >&2; exit 1; }
pids=()

echo "== cluster smoke OK"
