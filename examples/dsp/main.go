// dsp schedules a few DSP kernels on a TI TMS320C6x-like machine: 2
// clusters, 32 registers, a single cross path of 1-cycle latency. Clustered
// VLIW DSPs are the paper's motivating hardware (§1 cites the C6x,
// TigerSHARC, MAP1000, Lx and ManArray).
package main

import (
	"fmt"
	"log"

	"repro"
)

// fir builds an unrolled 4-tap FIR filter body:
// y[i] = h0*x[i] + h1*x[i-1] + h2*x[i-2] + h3*x[i-3].
func fir() *gpsched.DDG {
	g := gpsched.NewLoop("fir4", 4096)
	var sums []int
	for t := 0; t < 4; t++ {
		x := g.AddNode(gpsched.Load, fmt.Sprintf("x[i-%d]", t))
		m := g.AddNode(gpsched.FPMul, fmt.Sprintf("h%d*", t))
		g.AddDep(x, m, 0)
		sums = append(sums, m)
	}
	a1 := g.AddNode(gpsched.FPAdd, "t0+t1")
	g.AddDep(sums[0], a1, 0)
	g.AddDep(sums[1], a1, 0)
	a2 := g.AddNode(gpsched.FPAdd, "t2+t3")
	g.AddDep(sums[2], a2, 0)
	g.AddDep(sums[3], a2, 0)
	a3 := g.AddNode(gpsched.FPAdd, "sum")
	g.AddDep(a1, a3, 0)
	g.AddDep(a2, a3, 0)
	st := g.AddNode(gpsched.Store, "y[i]")
	g.AddDep(a3, st, 0)
	return g
}

// iir builds a biquad IIR section, whose feedback recurrence bounds the II:
// y[i] = b0*x[i] + b1*x[i-1] - a1*y[i-1].
func iir() *gpsched.DDG {
	g := gpsched.NewLoop("biquad", 4096)
	x0 := g.AddNode(gpsched.Load, "x[i]")
	m0 := g.AddNode(gpsched.FPMul, "b0*")
	g.AddDep(x0, m0, 0)
	x1 := g.AddNode(gpsched.Load, "x[i-1]")
	m1 := g.AddNode(gpsched.FPMul, "b1*")
	g.AddDep(x1, m1, 0)
	fb := g.AddNode(gpsched.FPMul, "a1*y")
	s1 := g.AddNode(gpsched.FPAdd, "+")
	s2 := g.AddNode(gpsched.FPAdd, "y[i]")
	g.AddDep(m0, s1, 0)
	g.AddDep(m1, s1, 0)
	g.AddDep(s1, s2, 0)
	g.AddDep(fb, s2, 0)
	g.AddDep(s2, fb, 1) // y[i-1] feeds next iteration's feedback multiply
	st := g.AddNode(gpsched.Store, "store y")
	g.AddDep(s2, st, 0)
	return g
}

// dotprod is a reduction with a 1-cycle accumulator recurrence.
func dotprod() *gpsched.DDG {
	g := gpsched.NewLoop("dotprod", 8192)
	a := g.AddNode(gpsched.Load, "a[i]")
	b := g.AddNode(gpsched.Load, "b[i]")
	m := g.AddNode(gpsched.FPMul, "a*b")
	g.AddDep(a, m, 0)
	g.AddDep(b, m, 0)
	acc := g.AddNode(gpsched.FPAdd, "sum+=")
	g.AddDep(m, acc, 0)
	g.AddDep(acc, acc, 1)
	return g
}

func main() {
	c6x := gpsched.Clustered(2, 32, 1, 1) // two data paths, one cross path
	fmt.Printf("machine: %s (TMS320C6x-like: two data paths, one cross path)\n\n", c6x)

	for _, g := range []*gpsched.DDG{fir(), iir(), dotprod()} {
		gp, err := gpsched.Run(g, c6x, nil)
		if err != nil {
			log.Fatal(err)
		}
		ur, err := gpsched.Run(g, c6x, &gpsched.Options{Algorithm: gpsched.URACAM})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s ops=%-3d MII=%-2d | GP: II=%d IPC=%.3f comms=%d | URACAM: II=%d IPC=%.3f comms=%d\n",
			g.Name, g.N(), gp.MII,
			gp.Schedule.II, gp.IPC(g), len(gp.Schedule.Comms),
			ur.Schedule.II, ur.IPC(g), len(ur.Schedule.Comms))
	}
	fmt.Println("\nThe recurrence-bound biquad cannot beat its RecMII; the FIR and dot")
	fmt.Println("product are resource-bound and split across both data paths.")
}
