// explore opens up the partitioner: it shows the multilevel coarsening and
// refinement on one synthetic loop — the edge weights (delay/slack), the
// level count, the resulting assignment, the bus-imposed II bound, and how
// the GP driver escalates the II and selectively recomputes the partition.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/partition"
)

func main() {
	// A loop with a tight recurrence, a memory-heavy side chain, and
	// independent FP work: interesting to split.
	g := gpsched.NewLoop("explore", 500)
	// Recurrence a->b->a (dist 1).
	a := g.AddNode(gpsched.FPAdd, "a")
	b := g.AddNode(gpsched.FPMul, "b")
	g.AddDep(a, b, 0)
	g.AddDep(b, a, 1)
	// Memory chain feeding the recurrence.
	var prev int = -1
	for i := 0; i < 4; i++ {
		l := g.AddNode(gpsched.Load, fmt.Sprintf("ld%d", i))
		s := g.AddNode(gpsched.IntALU, fmt.Sprintf("addr%d", i))
		g.AddDep(l, s, 0)
		if prev >= 0 {
			g.AddDep(prev, l, 0)
		}
		prev = s
	}
	g.AddDep(prev, a, 0)
	// Independent FP work.
	for i := 0; i < 6; i++ {
		x := g.AddNode(gpsched.Load, "")
		y := g.AddNode(gpsched.FPMul, "")
		z := g.AddNode(gpsched.FPAdd, "")
		g.AddDep(x, y, 0)
		g.AddDep(y, z, 0)
	}

	m := gpsched.Clustered(2, 32, 1, 2)
	mii := gpsched.MII(g, m)
	fmt.Printf("loop: %d ops, %d edges, MII=%d on %s\n\n", g.N(), len(g.Edges), mii, m)

	res := gpsched.Partition(g, m, mii, nil)
	fmt.Printf("partition: %d coarsening levels, %d refinement moves\n", res.Levels, res.Moves)
	fmt.Printf("           NComm=%d  IIbus=%d  estimated II=%d  estimated cycles=%d\n",
		res.NComm, res.IIBus, res.EstII, res.EstTime)
	fmt.Printf("           assignment: %v\n\n", res.Assign)

	// Compare against the cut-size-only ablation.
	uni := gpsched.Partition(g, m, mii, &partition.Options{Weights: partition.UniformWeights})
	fmt.Printf("uniform-weight ablation: NComm=%d IIbus=%d estimated cycles=%d\n\n",
		uni.NComm, uni.IIBus, uni.EstTime)

	// Full GP run: watch II escalation and repartitioning.
	out, err := gpsched.Run(g, m, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GP schedule: II=%d (MII %d, %d attempts, %d partition computations)\n",
		out.Schedule.II, out.MII, out.Attempts, out.Partitions)
	fmt.Printf("             comms=%d spills=%d memroutes=%d maxlive=%v IPC=%.3f\n",
		len(out.Schedule.Comms), out.Schedule.Spills, out.Schedule.MemRoutes,
		out.Schedule.MaxLive, out.IPC(g))
}
