// specfp reproduces one panel of the paper's Figure 2 from the public API:
// the synthetic SPECfp95 corpus scheduled on the 2-cluster, 32-register,
// 1-bus/1-cycle configuration by all four schemes, reported as IPC per
// benchmark — the paper's headline +23%-over-URACAM setting.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/bench"
)

func main() {
	corpus := gpsched.SPECfp95Corpus()
	rep, err := bench.Run(corpus, bench.Config{Clusters: 2, TotalRegs: 32, NBus: 1, LatBus: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Render())
	fmt.Printf("\nGP speedup over URACAM: %+.1f%%   over Fixed Partition: %+.1f%%\n",
		rep.Speedup(bench.SchemeURACAM), rep.Speedup(bench.SchemeFixed))
	fmt.Printf("scheduling time, URACAM/GP: %.1fx (paper: 2-7x)\n", rep.TimeRatio())
}
