// Quickstart: build a small loop by hand, schedule it with the paper's GP
// scheme on a 2-cluster machine, and compare against the URACAM baseline
// and the unified upper bound.
//
// The loop is a DAXPY-like body with a loop-carried accumulator:
//
//	for i { s = s + a*x[i]; y[i] = s }
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	g := gpsched.NewLoop("daxpy-acc", 1000)
	x := g.AddNode(gpsched.Load, "x[i]")
	mul := g.AddNode(gpsched.FPMul, "a*x[i]")
	acc := g.AddNode(gpsched.FPAdd, "s+=")
	st := g.AddNode(gpsched.Store, "y[i]=s")
	g.AddDep(x, mul, 0)
	g.AddDep(mul, acc, 0)
	g.AddDep(acc, st, 0)
	g.AddDep(acc, acc, 1) // the accumulator recurrence: s depends on last iteration's s

	twoCluster := gpsched.Clustered(2, 64, 1, 1)
	unified := gpsched.Unified(64)

	fmt.Printf("loop %q: %d ops, MII=%d on %s\n\n", g.Name, g.N(), gpsched.MII(g, twoCluster), twoCluster)

	for _, run := range []struct {
		label string
		m     *gpsched.Machine
		alg   gpsched.Algorithm
	}{
		{"unified upper bound", unified, gpsched.GP},
		{"URACAM baseline    ", twoCluster, gpsched.URACAM},
		{"Fixed Partition    ", twoCluster, gpsched.FixedPartition},
		{"GP (paper's scheme)", twoCluster, gpsched.GP},
	} {
		res, err := gpsched.Run(g, run.m, &gpsched.Options{Algorithm: run.alg})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Schedule
		fmt.Printf("%s  II=%d SL=%d comms=%d IPC=%.3f cycles=%d\n",
			run.label, s.II, s.SL, len(s.Comms), res.IPC(g), s.Cycles(g.Niter))
	}

	// Inspect the GP placement.
	res, err := gpsched.Run(g, twoCluster, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGP placement:")
	for v, n := range g.Nodes {
		fmt.Printf("  %-8s %-8s cluster %d, cycle %d (modulo slot %d)\n",
			n.Name, n.Op, res.Schedule.Cluster[v], res.Schedule.Time[v], res.Schedule.Time[v]%res.Schedule.II)
	}
}
