// Package gpsched is a reproduction of "Graph-Partitioning Based
// Instruction Scheduling for Clustered Processors" (Aletà, Codina, Sánchez,
// González — MICRO-34, 2001): modulo scheduling for clustered VLIW
// processors driven by a multilevel graph-partitioning cluster assignment.
//
// The public API wraps the implementation packages:
//
//   - build a loop's data dependence graph with NewLoop / (*DDG).AddNode /
//     (*DDG).AddEdge, or parse one with ReadLoops;
//   - pick a machine with Unified / Clustered (the paper's Table 1
//     configurations) or construct a machine.Config directly;
//   - schedule with Run, choosing the algorithm: GP (the paper's scheme),
//     FixedPartition, or URACAM (the baseline it improves upon);
//   - reproduce the paper's evaluation with the workload corpus
//     (SPECfp95Corpus) and the experiment harness (see cmd/gpbench and
//     bench_test.go).
//
// Quick start:
//
//	g := gpsched.NewLoop("daxpy", 1000)
//	x := g.AddNode(gpsched.Load, "x[i]")
//	y := g.AddNode(gpsched.Load, "y[i]")
//	m := g.AddNode(gpsched.FPMul, "a*x")
//	a := g.AddNode(gpsched.FPAdd, "+y")
//	s := g.AddNode(gpsched.Store, "y[i]=")
//	g.AddDep(x, m, 0)
//	g.AddDep(m, a, 0)
//	g.AddDep(y, a, 0)
//	g.AddDep(a, s, 0)
//	res, err := gpsched.Run(g, gpsched.Clustered(2, 64, 1, 1), nil)
package gpsched

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/ddgio"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/schedule"
	"repro/internal/server"
	"repro/internal/workload"
)

// Core graph and machine types.
type (
	// DDG is a loop's data dependence graph.
	DDG = ddg.Graph
	// Edge is a dependence: t(To) ≥ t(From) + Lat − II·Dist.
	Edge = ddg.Edge
	// EdgeKind distinguishes register data dependences from memory
	// ordering dependences.
	EdgeKind = ddg.EdgeKind
	// Machine is a clustered VLIW configuration.
	Machine = machine.Config
	// OpClass is an operation class (IntALU, Load, ...).
	OpClass = isa.OpClass
	// Schedule is a finished modulo (or list) schedule.
	Schedule = schedule.Schedule
	// Result is the outcome of scheduling one loop.
	Result = core.Result
	// Options configures Run; the zero value is the paper's GP scheme.
	Options = core.Options
	// Algorithm selects GP, FixedPartition or URACAM.
	Algorithm = core.Algorithm
	// PartitionOptions tunes the graph partitioner (ablations).
	PartitionOptions = partition.Options
	// PartitionResult is a cluster assignment with its IIbus bound.
	PartitionResult = partition.Result
	// Benchmark is a named set of weighted loops.
	Benchmark = workload.Benchmark
	// Loop pairs a DDG with its execution weight.
	Loop = workload.Loop
	// ClusterSpec is the per-cluster resource mix of a heterogeneous
	// machine.
	ClusterSpec = machine.ClusterSpec
	// Topology selects the interconnect model (SharedBus or PointToPoint).
	Topology = machine.Topology
)

// Interconnect topologies.
const (
	SharedBus    = machine.SharedBus
	PointToPoint = machine.PointToPoint
)

// Operation classes.
const (
	IntALU = isa.IntALU
	IntMul = isa.IntMul
	FPAdd  = isa.FPAdd
	FPMul  = isa.FPMul
	FPDiv  = isa.FPDiv
	Load   = isa.Load
	Store  = isa.Store
)

// Edge kinds.
const (
	Data = ddg.Data
	Mem  = ddg.Mem
)

// Algorithms.
const (
	GP             = core.GP
	FixedPartition = core.FixedPartition
	URACAM         = core.URACAM
)

// NewLoop returns an empty DDG with a name and profiled trip count.
func NewLoop(name string, niter int) *DDG { return ddg.New(name, niter) }

// Unified returns the paper's unified (single-cluster) baseline machine.
func Unified(totalRegs int) *Machine { return machine.NewUnified(totalRegs) }

// Clustered returns an n-cluster 12-issue machine with totalRegs registers
// split evenly and nbus buses of latency latBus. It panics on parameters
// that do not divide evenly; use machine.NewClustered for error returns.
func Clustered(n, totalRegs, nbus, latBus int) *Machine {
	return machine.MustClustered(n, totalRegs, nbus, latBus)
}

// Run schedules one loop on a machine. opts may be nil (GP defaults).
func Run(g *DDG, m *Machine, opts *Options) (*Result, error) {
	return core.ScheduleLoop(g, m, opts)
}

// RunContext is Run with cancellation: a canceled context stops the II
// escalation search between scheduling attempts.
func RunContext(ctx context.Context, g *DDG, m *Machine, opts *Options) (*Result, error) {
	return core.ScheduleLoopContext(ctx, g, m, opts)
}

// Partition computes only the cluster assignment for a loop at the given
// II (use g.MII(m) for the paper's entry point), without scheduling.
func Partition(g *DDG, m *Machine, ii int, opts *PartitionOptions) *PartitionResult {
	return partition.New(g, m, opts).Partition(ii)
}

// MII returns the loop's minimum initiation interval on m.
func MII(g *DDG, m *Machine) int { return g.MII(m) }

// Hetero returns a heterogeneous machine: one ClusterSpec per cluster,
// connected by nbus buses (SharedBus) or per-pair links (PointToPoint) of
// latency latBus, optionally pipelined.
func Hetero(name string, specs []ClusterSpec, topo Topology, nbus, latBus int, pipelined bool) (*Machine, error) {
	return machine.NewHetero(name, specs, topo, nbus, latBus, pipelined)
}

// Verify validates a complete schedule against the dependence graph and
// machine, independently of the scheduler that produced it: dependences
// under the actual value routing, per-cluster unit and memory-port
// occupancy, interconnect occupancy, and register pressure. Tests use it as
// a differential oracle over every scheme × machine × loop.
func Verify(g *DDG, m *Machine, s *Schedule) error { return schedule.Verify(g, m, s) }

// SPECfp95Corpus generates the deterministic synthetic stand-in for the
// paper's SPECfp95 evaluation corpus (see DESIGN.md §4).
func SPECfp95Corpus() []*Benchmark { return workload.SPECfp95() }

// DSPCorpus generates the deterministic integer-heavy DSP/MediaBench-style
// corpus: small loop bodies, deep recurrences, large trip counts.
func DSPCorpus() []*Benchmark { return workload.DSP() }

// ReadLoops parses loops from the ddgio text format.
func ReadLoops(r io.Reader) ([]*DDG, error) { return ddgio.Read(r) }

// WriteLoops serializes loops to the ddgio text format.
func WriteLoops(w io.Writer, loops ...*DDG) error { return ddgio.Write(w, loops...) }

// ReadMachine parses one machine description in the text format of
// machine.Parse (see FormatMachine for the canonical form).
func ReadMachine(r io.Reader) (*Machine, error) { return machine.Parse(r) }

// FormatMachine renders a machine in the text description format.
func FormatMachine(m *Machine) string { return machine.Format(m) }

// JSON wire format. LoopJSON is the JSON encoding of one loop DDG;
// ScheduleRequest/ScheduleResponse and SweepRequest are the stable
// request/response bodies of the gpserved HTTP API (POST /v1/schedule and
// POST /v1/sweep — see cmd/gpserved and the README's "HTTP API" section).
type (
	// LoopJSON is the JSON encoding of one loop DDG.
	LoopJSON = ddgio.JSONLoop
	// ScheduleRequest is the body of POST /v1/schedule.
	ScheduleRequest = server.ScheduleRequest
	// ScheduleResponse is the body of a successful POST /v1/schedule.
	ScheduleResponse = server.ScheduleResponse
	// SweepRequest is the body of POST /v1/sweep.
	SweepRequest = server.SweepRequest
)

// ReadLoopsJSON parses loops from the JSON wire format: an array of loop
// objects or a single loop object.
func ReadLoopsJSON(r io.Reader) ([]*DDG, error) { return ddgio.ReadJSON(r) }

// WriteLoopsJSON serializes loops as one JSON array.
func WriteLoopsJSON(w io.Writer, loops ...*DDG) error { return ddgio.WriteJSON(w, loops...) }
