// Benchmarks regenerating every table and figure of the paper's evaluation
// (§4). Each benchmark runs one experiment panel over the synthetic
// SPECfp95 corpus and reports the key aggregates as custom metrics; the
// full per-benchmark rows (the paper's bar charts) are logged with -v and
// printed by cmd/gpbench.
//
//	BenchmarkTable1Configs        — Table 1 (machine configurations)
//	BenchmarkFigure2TwoCluster    — Figure 2 top (2-cluster, 1-cycle bus)
//	BenchmarkFigure2FourCluster   — Figure 2 bottom (4-cluster, 1-cycle bus)
//	BenchmarkFigure3              — Figure 3 (4-cluster, 2-cycle bus)
//	BenchmarkTable2SchedulerTime  — Table 2 (URACAM vs GP scheduling time)
//	BenchmarkAblation*            — DESIGN.md §6 ablations
package gpsched

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/partition"
	"repro/internal/workload"
)

var corpus = workload.SPECfp95()

func runPanel(b *testing.B, cfg bench.Config) *bench.Report {
	b.Helper()
	if testing.Short() {
		b.Skip("multi-second paper-figure panel; skipped in -short mode")
	}
	var rep *bench.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = bench.Run(corpus, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", rep.Render())
	rep.ReportTo(b)
	return rep
}

// BenchmarkTable1Configs regenerates Table 1: it validates the three
// configurations and reports their issue widths.
func BenchmarkTable1Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = bench.RenderTable1(64, 1, 1)
	}
	b.Logf("\n%s", bench.RenderTable1(64, 1, 1))
}

func BenchmarkFigure2TwoCluster32(b *testing.B) {
	runPanel(b, bench.Config{Clusters: 2, TotalRegs: 32, NBus: 1, LatBus: 1})
}

func BenchmarkFigure2TwoCluster64(b *testing.B) {
	runPanel(b, bench.Config{Clusters: 2, TotalRegs: 64, NBus: 1, LatBus: 1})
}

func BenchmarkFigure2FourCluster32(b *testing.B) {
	runPanel(b, bench.Config{Clusters: 4, TotalRegs: 32, NBus: 1, LatBus: 1})
}

func BenchmarkFigure2FourCluster64(b *testing.B) {
	runPanel(b, bench.Config{Clusters: 4, TotalRegs: 64, NBus: 1, LatBus: 1})
}

func BenchmarkFigure3FourCluster32Lat2(b *testing.B) {
	runPanel(b, bench.Config{Clusters: 4, TotalRegs: 32, NBus: 1, LatBus: 2})
}

func BenchmarkFigure3FourCluster64Lat2(b *testing.B) {
	runPanel(b, bench.Config{Clusters: 4, TotalRegs: 64, NBus: 1, LatBus: 2})
}

// BenchmarkTable2SchedulerTime reproduces Table 2's metric directly: the
// per-loop scheduling time of each scheme on the headline configuration.
// The paper's claim is that URACAM is 2–7× slower than GP and Fixed.
func BenchmarkTable2SchedulerTime(b *testing.B) {
	rep := runPanel(b, bench.Config{Clusters: 2, TotalRegs: 32, NBus: 1, LatBus: 1})
	b.ReportMetric(rep.TimeRatio(), "URACAM/GP-time")
}

// Ablations (DESIGN.md §6) on the headline configuration.

func BenchmarkAblationUniformWeights(b *testing.B) {
	runPanel(b, bench.Config{
		Clusters: 2, TotalRegs: 32, NBus: 1, LatBus: 1,
		PartitionOpts: &Options{Partition: &partition.Options{Weights: partition.UniformWeights}},
	})
}

func BenchmarkAblationNoRefinement(b *testing.B) {
	runPanel(b, bench.Config{
		Clusters: 2, TotalRegs: 32, NBus: 1, LatBus: 1,
		PartitionOpts: &Options{Partition: &partition.Options{SkipRefinement: true}},
	})
}

func BenchmarkAblationGreedyMatching(b *testing.B) {
	runPanel(b, bench.Config{
		Clusters: 2, TotalRegs: 32, NBus: 1, LatBus: 1,
		PartitionOpts: &Options{Partition: &partition.Options{GreedyMatchingOnly: true}},
	})
}

// BenchmarkAblationTwoBuses checks the paper's remark that two-bus results
// follow the same trend (§4.1).
func BenchmarkAblationTwoBuses(b *testing.B) {
	runPanel(b, bench.Config{Clusters: 4, TotalRegs: 64, NBus: 2, LatBus: 1})
}
